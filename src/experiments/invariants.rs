//! Trace invariant suite: run every benchmark with cycle-level tracing
//! attached, check the Algorithm-1 invariants (I1–I5, see
//! `docs/tracing.md`) over the recorded stream, and prove the trace is
//! *complete* by replaying it through a [`MetricsSink`] and comparing
//! the reconstructed [`DmrReport`] bit-for-bit against the live engine's.
//!
//! This is the harness that caught the two Algorithm-1 bugs this layer
//! was built for: a consumer issuing past its unverified producer in the
//! RF slot (no RAW stall — invariant I5), and verify timestamps that
//! ignored preceding RAW stalls (invariant I3).

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_core::{DmrConfig, DmrReport, WarpedDmr};
use warped_kernels::Benchmark;
use warped_stats::Table;
use warped_trace::{replay, CollectSink, InvariantSink, MetricsSink, TraceHandle};

/// One benchmark's invariant-suite result.
#[derive(Debug, Clone)]
pub struct InvariantRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Trace events recorded over the whole program (all launches).
    pub events: u64,
    /// Total verify events the live engine reported.
    pub verified: u64,
    /// Invariant violations found in the recorded stream.
    pub violations: u64,
    /// First violation message, if any (for diagnostics).
    pub first_violation: Option<String>,
    /// Whether replaying the trace through a [`MetricsSink`] reproduced
    /// the live [`DmrReport`] exactly.
    pub replay_exact: bool,
}

impl InvariantRow {
    /// Did this benchmark pass the whole suite?
    pub fn pass(&self) -> bool {
        self.violations == 0 && self.replay_exact
    }
}

/// Run one benchmark traced and check it. Used by the suite below and by
/// the CLI's single-benchmark mode.
///
/// # Errors
///
/// Propagates workload and simulator errors. Invariant violations are
/// *reported* in the row, not raised as errors — callers decide.
pub fn check_benchmark(
    bench: Benchmark,
    cfg: &ExperimentConfig,
) -> Result<InvariantRow, ExperimentError> {
    let w = bench.build(cfg.size)?;
    let mut engine = WarpedDmr::new(DmrConfig::default(), &cfg.gpu);
    let (collector, handle) = TraceHandle::shared(CollectSink::new());
    engine.set_trace(handle.clone());
    let run = w.run_traced(&cfg.gpu, &mut engine, handle)?;
    w.check(&run)?;
    let live = engine.report();
    let events = collector.lock().expect("collector poisoned").take();

    let mut inv = InvariantSink::new();
    replay::feed(&events, &mut inv);

    let mut metrics = MetricsSink::new();
    replay::feed(&events, &mut metrics);
    let replayed = DmrReport::from_metrics(&metrics);

    Ok(InvariantRow {
        benchmark: bench,
        events: events.len() as u64,
        verified: live.checker.total_verified(),
        violations: inv.total_violations(),
        first_violation: inv.violations().first().map(|v| v.to_string()),
        replay_exact: replayed == live,
    })
}

/// Run the invariant suite over the whole benchmark suite.
///
/// # Errors
///
/// Propagates workload and simulator errors. Returns
/// [`ExperimentError::Invariant`] only from [`require_clean`]; this
/// function reports per-benchmark outcomes in the rows.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<InvariantRow>, Table), ExperimentError> {
    let rows = cfg
        .runner()
        .try_map(Benchmark::ALL, |bench| check_benchmark(bench, cfg))?;
    let mut table = Table::new(vec![
        "benchmark".to_string(),
        "events".to_string(),
        "verified".to_string(),
        "violations".to_string(),
        "replay".to_string(),
        "status".to_string(),
    ]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            r.events.to_string(),
            r.verified.to_string(),
            r.violations.to_string(),
            if r.replay_exact { "exact" } else { "MISMATCH" }.to_string(),
            if r.pass() { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    Ok((rows, table))
}

/// Turn any failing row into an [`ExperimentError::Invariant`] — the
/// strict mode `scripts/lint.sh` and `warped invariants --check` use.
///
/// # Errors
///
/// Returns [`ExperimentError::Invariant`] naming the first failing
/// benchmark.
pub fn require_clean(rows: &[InvariantRow]) -> Result<(), ExperimentError> {
    for r in rows {
        if r.violations > 0 {
            return Err(ExperimentError::Invariant(format!(
                "{}: {} invariant violation(s); first: {}",
                r.benchmark.name(),
                r.violations,
                r.first_violation.as_deref().unwrap_or("(none recorded)")
            )));
        }
        if !r.replay_exact {
            return Err(ExperimentError::Invariant(format!(
                "{}: trace replay did not reproduce the live DmrReport",
                r.benchmark.name()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_tiny_is_clean_and_replay_exact() {
        let cfg = ExperimentConfig::test_tiny();
        let row = check_benchmark(Benchmark::Scan, &cfg).unwrap();
        assert!(row.events > 0);
        assert!(row.verified > 0);
        assert_eq!(row.violations, 0, "{:?}", row.first_violation);
        assert!(row.replay_exact);
        assert!(row.pass());
    }

    #[test]
    fn require_clean_flags_a_failing_row() {
        let good = InvariantRow {
            benchmark: Benchmark::Scan,
            events: 10,
            verified: 5,
            violations: 0,
            first_violation: None,
            replay_exact: true,
        };
        assert!(require_clean(std::slice::from_ref(&good)).is_ok());
        let bad = InvariantRow {
            violations: 2,
            first_violation: Some("I5: raw hazard".to_string()),
            ..good.clone()
        };
        let err = require_clean(&[bad]).unwrap_err();
        assert!(err.to_string().contains("I5"));
        let mismatch = InvariantRow {
            replay_exact: false,
            ..good
        };
        assert!(require_clean(&[mismatch]).is_err());
    }
}
