//! Paper Fig. 11: power and energy of Warped-DMR normalized to the
//! unprotected baseline.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_core::{DmrConfig, WarpedDmr};
use warped_kernels::Benchmark;
use warped_power::{estimate, PowerParams};
use warped_sim::NullObserver;
use warped_stats::Table;

/// One benchmark's two bars of Fig. 11.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Total power with Warped-DMR / without.
    pub power_ratio: f64,
    /// Energy with Warped-DMR / without.
    pub energy_ratio: f64,
}

/// Run every benchmark with and without Warped-DMR and compare
/// power/energy.
///
/// # Errors
///
/// Propagates workload and simulator errors; results are validated.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<Fig11Row>, Table), ExperimentError> {
    let params = PowerParams::default();
    let rows = cfg.runner().try_map(
        Benchmark::ALL,
        |bench| -> Result<Fig11Row, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let base_run = w.run_with(&cfg.gpu, &mut NullObserver)?;
            w.check(&base_run)?;
            let base = estimate(&base_run.stats, &cfg.gpu, &params, None);

            let mut engine = WarpedDmr::new(DmrConfig::default(), &cfg.gpu);
            let dmr_run = w.run_with(&cfg.gpu, &mut engine)?;
            let report = engine.report();
            let with = estimate(&dmr_run.stats, &cfg.gpu, &params, Some(&report));

            Ok(Fig11Row {
                benchmark: bench,
                power_ratio: with.power_ratio(&base),
                energy_ratio: with.energy_ratio(&base),
            })
        },
    )?;
    let mut table = Table::new(vec!["benchmark", "power ratio", "energy ratio"]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            format!("{:.3}", r.power_ratio),
            format!("{:.3}", r.energy_ratio),
        ]);
    }
    let n = rows.len() as f64;
    table.row(vec![
        "AVERAGE".to_string(),
        format!("{:.3}", rows.iter().map(|r| r.power_ratio).sum::<f64>() / n),
        format!(
            "{:.3}",
            rows.iter().map(|r| r.energy_ratio).sum::<f64>() / n
        ),
    ]);
    Ok((rows, table))
}

/// Average `(power, energy)` ratios — the paper's (1.11, 1.31) pair.
pub fn averages(rows: &[Fig11Row]) -> (f64, f64) {
    let n = rows.len().max(1) as f64;
    (
        rows.iter().map(|r| r.power_ratio).sum::<f64>() / n,
        rows.iter().map(|r| r.energy_ratio).sum::<f64>() / n,
    )
}
