//! Ablations of the design choices DESIGN.md calls out: which DMR
//! mechanism earns the coverage, what lane shuffling buys, what the warp
//! scheduler does to instruction-type runs, and how duty-cycled
//! (Sampling-)DMR trades coverage for overhead.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_baselines::ResidueChecker;
use warped_core::{DmrConfig, SamplingConfig, SamplingDmr, WarpedDmr};
use warped_faults::campaign::{stuck_at_campaign_with, CampaignOptions, Protection};
use warped_isa::UnitType;
use warped_kernels::{Benchmark, WorkloadSize};
use warped_sim::collectors::TypeSwitchCollector;
use warped_sim::{GpuConfig, NullObserver, SchedulerPolicy};
use warped_stats::Table;

/// Mechanism ablation: coverage with both mechanisms, intra-warp only,
/// and inter-warp only.
#[derive(Debug, Clone, Copy)]
pub struct MechanismRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Both mechanisms (the paper's design).
    pub both: f64,
    /// Intra-warp DMR alone.
    pub intra_only: f64,
    /// Inter-warp DMR alone.
    pub inter_only: f64,
    /// Mod-3 residue checking (paper §6 alternative) — the fraction of
    /// executions that even *have* a residue identity.
    pub residue: f64,
}

/// Run the mechanism ablation over the whole suite.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn mechanisms(cfg: &ExperimentConfig) -> Result<(Vec<MechanismRow>, Table), ExperimentError> {
    let variants = [
        DmrConfig::default(),
        DmrConfig {
            enable_inter: false,
            ..DmrConfig::default()
        },
        DmrConfig {
            enable_intra: false,
            ..DmrConfig::default()
        },
    ];
    let rows = cfg.runner().try_map(
        Benchmark::ALL,
        |bench| -> Result<MechanismRow, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let mut cov = [0.0f64; 3];
            for (i, v) in variants.iter().enumerate() {
                let mut engine = WarpedDmr::new(v.clone(), &cfg.gpu);
                let run = w.run_with(&cfg.gpu, &mut engine)?;
                w.check(&run)?;
                cov[i] = engine.report().coverage_pct();
            }
            let mut residue = ResidueChecker::new();
            let run = w.run_with(&cfg.gpu, &mut residue)?;
            w.check(&run)?;
            Ok(MechanismRow {
                benchmark: bench,
                both: cov[0],
                intra_only: cov[1],
                inter_only: cov[2],
                residue: residue.stats.coverage_pct(),
            })
        },
    )?;
    let mut table = Table::new(vec![
        "benchmark",
        "both (%)",
        "intra only (%)",
        "inter only (%)",
        "residue chk (%)",
    ]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            format!("{:.2}", r.both),
            format!("{:.2}", r.intra_only),
            format!("{:.2}", r.inter_only),
            format!("{:.2}", r.residue),
        ]);
    }
    Ok((rows, table))
}

/// Scheduler ablation: average SP-run length and Warped-DMR overhead
/// under greedy vs round-robin warp scheduling.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Mean SP run length (cycles) under greedy scheduling.
    pub greedy_sp_run: Option<f64>,
    /// Mean SP run length under loose round-robin.
    pub rr_sp_run: Option<f64>,
    /// Warped-DMR normalized cycles under greedy.
    pub greedy_overhead: f64,
    /// Warped-DMR normalized cycles under round-robin.
    pub rr_overhead: f64,
}

/// Run the scheduler ablation.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn scheduler(cfg: &ExperimentConfig) -> Result<(Vec<SchedulerRow>, Table), ExperimentError> {
    let rows = cfg.runner().try_map(
        Benchmark::ALL,
        |bench| -> Result<SchedulerRow, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let mut per_policy = Vec::new();
            for policy in [
                SchedulerPolicy::GreedyThenOldest,
                SchedulerPolicy::LooseRoundRobin,
            ] {
                let gpu = GpuConfig {
                    scheduler: policy,
                    ..cfg.gpu.clone()
                };
                let mut switches = TypeSwitchCollector::new();
                let base = w.run_with(&gpu, &mut switches)?;
                w.check(&base)?;
                let mut engine = WarpedDmr::new(DmrConfig::default(), &gpu);
                let with = w.run_with(&gpu, &mut engine)?;
                per_policy.push((
                    switches.average(UnitType::Sp),
                    with.stats.cycles as f64 / base.stats.cycles.max(1) as f64,
                ));
            }
            Ok(SchedulerRow {
                benchmark: bench,
                greedy_sp_run: per_policy[0].0,
                rr_sp_run: per_policy[1].0,
                greedy_overhead: per_policy[0].1,
                rr_overhead: per_policy[1].1,
            })
        },
    )?;
    let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
    let mut table = Table::new(vec![
        "benchmark",
        "SP run, greedy",
        "SP run, round-robin",
        "overhead, greedy",
        "overhead, round-robin",
    ]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            fmt(r.greedy_sp_run),
            fmt(r.rr_sp_run),
            format!("{:.3}", r.greedy_overhead),
            format!("{:.3}", r.rr_overhead),
        ]);
    }
    Ok((rows, table))
}

/// Sampling-DMR duty sweep on one fully-utilized benchmark: coverage and
/// overhead vs duty cycle (the Nomura et al. trade-off of paper §6).
#[derive(Debug, Clone, Copy)]
pub struct SamplingRow {
    /// Duty fraction of each epoch.
    pub duty: f64,
    /// Coverage over the whole run, percent.
    pub coverage_pct: f64,
    /// Cycles normalized to the unprotected run.
    pub normalized_cycles: f64,
}

/// Run the sampling sweep over MatrixMul.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn sampling(cfg: &ExperimentConfig) -> Result<(Vec<SamplingRow>, Table), ExperimentError> {
    let w = Benchmark::MatrixMul.build(cfg.size)?;
    let base = w.run_with(&cfg.gpu, &mut NullObserver)?.stats.cycles.max(1);
    let mut rows = Vec::new();
    for duty in [0.1f64, 0.25, 0.5, 1.0] {
        let inner = WarpedDmr::new(DmrConfig::default(), &cfg.gpu);
        let mut s = SamplingDmr::new(inner, SamplingConfig::with_duty(2000, duty));
        let run = w.run_with(&cfg.gpu, &mut s)?;
        w.check(&run)?;
        rows.push(SamplingRow {
            duty,
            coverage_pct: s.report().overall_coverage_pct(),
            normalized_cycles: run.stats.cycles as f64 / base as f64,
        });
    }
    let mut table = Table::new(vec!["duty", "coverage (%)", "normalized cycles"]);
    for r in &rows {
        table.row(vec![
            format!("{:.2}", r.duty),
            format!("{:.2}", r.coverage_pct),
            format!("{:.3}", r.normalized_cycles),
        ]);
    }
    Ok((rows, table))
}

/// Dual-scheduler ablation (paper §2.2): Fermi's second warp scheduler
/// speeds kernels up, but heterogeneous units stay underutilized — the
/// opportunity inter-warp DMR rides on survives.
#[derive(Debug, Clone, Copy)]
pub struct DualIssueRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Kernel cycles with one scheduler.
    pub single_cycles: u64,
    /// Kernel cycles with two schedulers.
    pub dual_cycles: u64,
    /// Fraction of issuing cycles in which both schedulers fired.
    pub dual_fire_rate: f64,
}

impl DualIssueRow {
    /// Speedup from the second scheduler.
    pub fn speedup(&self) -> f64 {
        self.single_cycles as f64 / self.dual_cycles.max(1) as f64
    }
}

/// Run the dual-scheduler ablation.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn dual_issue(cfg: &ExperimentConfig) -> Result<(Vec<DualIssueRow>, Table), ExperimentError> {
    let rows = cfg.runner().try_map(
        Benchmark::ALL,
        |bench| -> Result<DualIssueRow, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let single = w.run_with(&cfg.gpu, &mut NullObserver)?;
            w.check(&single)?;
            let dual_gpu = cfg.gpu.clone().with_dual_issue();
            let dual = w.run_with(&dual_gpu, &mut NullObserver)?;
            w.check(&dual)?;
            // An issuing cycle produced 1 or 2 instructions; dual_issues
            // counts the 2s.
            let issue_cycles = dual.stats.warp_instructions - dual.stats.dual_issues;
            Ok(DualIssueRow {
                benchmark: bench,
                single_cycles: single.stats.cycles,
                dual_cycles: dual.stats.cycles,
                dual_fire_rate: if issue_cycles == 0 {
                    0.0
                } else {
                    dual.stats.dual_issues as f64 / issue_cycles as f64
                },
            })
        },
    )?;
    let mut table = Table::new(vec![
        "benchmark",
        "cycles, 1 sched",
        "cycles, 2 sched",
        "speedup",
        "dual-fire (%)",
    ]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            r.single_cycles.to_string(),
            r.dual_cycles.to_string(),
            format!("{:.2}x", r.speedup()),
            format!("{:.1}", 100.0 * r.dual_fire_rate),
        ]);
    }
    Ok((rows, table))
}

/// Lane-shuffling ablation: stuck-at detection with and without
/// shuffling, per campaign benchmark.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn shuffling(cfg: &ExperimentConfig, trials: u32, seed: u64) -> Result<Table, ExperimentError> {
    let mut table = Table::new(vec![
        "benchmark",
        "stuck-at detected, shuffled (%)",
        "stuck-at detected, affinity (%)",
    ]);
    // Campaigns parallelize internally; keep the benchmark loop serial.
    let opts = CampaignOptions::default().with_threads(cfg.threads);
    for bench in [Benchmark::MatrixMul, Benchmark::Sha, Benchmark::Libor] {
        let w = bench.build(WorkloadSize::Tiny)?;
        let on = stuck_at_campaign_with(
            &w,
            &cfg.gpu,
            &DmrConfig::default(),
            Protection::WarpedDmr,
            trials,
            seed,
            &opts,
        )?;
        let off_cfg = DmrConfig {
            lane_shuffle: false,
            ..DmrConfig::default()
        };
        let off = stuck_at_campaign_with(
            &w,
            &cfg.gpu,
            &off_cfg,
            Protection::WarpedDmr,
            trials,
            seed,
            &opts,
        )?;
        table.row(vec![
            bench.name().to_string(),
            format!("{:.1}", on.detection_rate_pct()),
            format!("{:.1}", off.detection_rate_pct()),
        ]);
    }
    Ok(table)
}
