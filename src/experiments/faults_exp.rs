//! Fault-injection validation: measured detection rates vs. the analytic
//! coverage of Fig. 9a, plus the §3.2 lane-shuffling demonstration.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_core::{DmrConfig, WarpedDmr};
use warped_faults::campaign::{
    stuck_at_campaign_with, transient_campaign_with, CampaignOptions, Protection,
};
use warped_faults::{
    resilient_campaign, FaultSiteClass, ResilientOptions, ResilientReport, TrialOutcome,
};
use warped_kernels::{Benchmark, WorkloadSize};
use warped_stats::Table;

/// One benchmark's row of the fault-validation experiment.
#[derive(Debug, Clone, Copy)]
pub struct FaultRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Analytic coverage (Fig. 9a metric) at this size.
    pub analytic_coverage_pct: f64,
    /// Measured transient detection rate under Warped-DMR.
    pub transient_detection_pct: f64,
    /// Measured stuck-at detection rate under Warped-DMR (shuffled).
    pub stuck_detection_pct: f64,
    /// Measured stuck-at detection rate under DMTR (core affinity).
    pub dmtr_stuck_detection_pct: f64,
}

/// Benchmarks exercised by the campaign (one intra-heavy, one
/// inter-heavy, one mixed — a full sweep would re-simulate hundreds of
/// runs).
pub const CAMPAIGN_BENCHMARKS: [Benchmark; 3] =
    [Benchmark::Bfs, Benchmark::MatrixMul, Benchmark::Scan];

/// Run the campaigns. Injection always runs at `Tiny` size (each trial
/// is a full simulation); `trials` faults of each kind per benchmark.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn run(
    cfg: &ExperimentConfig,
    trials: u32,
    seed: u64,
) -> Result<(Vec<FaultRow>, Table), ExperimentError> {
    let dmr = DmrConfig::default();
    // The campaigns parallelize their trial chunks internally, so the
    // benchmark loop stays serial (no nested oversubscription).
    let opts = CampaignOptions::default().with_threads(cfg.threads);
    let mut rows = Vec::new();
    for bench in CAMPAIGN_BENCHMARKS {
        let w = bench.build(WorkloadSize::Tiny)?;
        let mut engine = WarpedDmr::new(dmr.clone(), &cfg.gpu);
        let run = w.run_with(&cfg.gpu, &mut engine)?;
        w.check(&run)?;
        let analytic = engine.report().coverage_pct();

        let transient = transient_campaign_with(
            &w,
            &cfg.gpu,
            &dmr,
            Protection::WarpedDmr,
            trials,
            seed,
            &opts,
        )?;
        let stuck = stuck_at_campaign_with(
            &w,
            &cfg.gpu,
            &dmr,
            Protection::WarpedDmr,
            trials,
            seed,
            &opts,
        )?;
        let dmtr_stuck =
            stuck_at_campaign_with(&w, &cfg.gpu, &dmr, Protection::Dmtr, trials, seed, &opts)?;

        rows.push(FaultRow {
            benchmark: bench,
            analytic_coverage_pct: analytic,
            transient_detection_pct: transient.detection_rate_pct(),
            stuck_detection_pct: stuck.detection_rate_pct(),
            dmtr_stuck_detection_pct: dmtr_stuck.detection_rate_pct(),
        });
    }
    let mut table = Table::new(vec![
        "benchmark",
        "analytic coverage (%)",
        "transient detected (%)",
        "stuck-at detected (%)",
        "DMTR stuck-at detected (%)",
    ]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            format!("{:.2}", r.analytic_coverage_pct),
            format!("{:.1}", r.transient_detection_pct),
            format!("{:.1}", r.stuck_detection_pct),
            format!("{:.1}", r.dmtr_stuck_detection_pct),
        ]);
    }
    Ok((rows, table))
}

/// One resilient campaign: `trials` faults of the given site class on
/// one benchmark, classified against a golden run into the full
/// masked / detected / SDC / hang taxonomy. Injection runs at `Tiny`
/// size, like [`run`] (each trial is two full simulations).
///
/// # Errors
///
/// Propagates workload errors and [`warped_faults::CampaignError`]
/// (broken golden run, unusable checkpoint journal). Chunks that
/// exhaust their retry budget are *not* errors — they surface as
/// `skipped` trials and widened intervals in the report.
pub fn resilient(
    cfg: &ExperimentConfig,
    bench: Benchmark,
    class: FaultSiteClass,
    trials: u32,
    seed: u64,
    opts: &ResilientOptions,
) -> Result<ResilientReport, ExperimentError> {
    let w = bench.build(WorkloadSize::Tiny)?;
    let dmr = DmrConfig::default();
    Ok(resilient_campaign(
        &w, &cfg.gpu, &dmr, class, trials, seed, opts,
    )?)
}

/// Render resilient-campaign reports as one table row per campaign,
/// with a 95% Wilson interval on every class rate (widened by skipped
/// trials when a chunk was dropped after exhausting its retries).
pub fn taxonomy_table(reports: &[ResilientReport]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "fault site",
        "trials",
        "skipped",
        "masked (%)",
        "detected (%)",
        "SDC (%)",
        "hang (%)",
    ]);
    for r in reports {
        let cell = |class: TrialOutcome| {
            let (lo, hi) = r.result.interval_pct(class);
            format!("{:.1} [{lo:.1}, {hi:.1}]", r.result.rate_pct(class))
        };
        table.row(vec![
            r.bench.clone(),
            r.class.to_string(),
            r.result.trials.to_string(),
            r.result.skipped.to_string(),
            cell(TrialOutcome::Masked),
            cell(TrialOutcome::Detected),
            cell(TrialOutcome::Sdc),
            cell(TrialOutcome::Hang),
        ]);
    }
    table
}
