//! Paper Fig. 9b: kernel cycles under Warped-DMR, normalized to the
//! unprotected baseline, as the ReplayQ size sweeps 0 / 1 / 5 / 10.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_core::{DmrConfig, WarpedDmr};
use warped_kernels::Benchmark;
use warped_sim::NullObserver;
use warped_stats::Table;

/// The ReplayQ sizes of Fig. 9b.
pub const REPLAYQ_SIZES: [usize; 4] = [0, 1, 5, 10];

/// One benchmark's four bars of Fig. 9b.
#[derive(Debug, Clone, Copy)]
pub struct Fig9bRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Unprotected kernel cycles.
    pub base_cycles: u64,
    /// Normalized cycles for ReplayQ sizes 0, 1, 5, 10.
    pub normalized: [f64; 4],
}

impl Fig9bRow {
    /// Overhead (fraction above 1.0) at the given sweep index.
    pub fn overhead(&self, idx: usize) -> f64 {
        self.normalized[idx] - 1.0
    }
}

/// Run the sweep.
///
/// # Errors
///
/// Propagates workload and simulator errors; results are validated.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<Fig9bRow>, Table), ExperimentError> {
    // One job per (benchmark, sweep point) cell; cell 0 is the
    // unprotected baseline the others normalize against.
    const VARIANTS: usize = REPLAYQ_SIZES.len() + 1;
    let cells: Vec<(Benchmark, usize)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| (0..VARIANTS).map(move |i| (b, i)))
        .collect();
    let cycles = cfg
        .runner()
        .try_map(cells, |(bench, i)| -> Result<u64, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let run = if i == 0 {
                let run = w.run_with(&cfg.gpu, &mut NullObserver)?;
                w.check(&run)?;
                run
            } else {
                let q = REPLAYQ_SIZES[i - 1];
                let mut engine = WarpedDmr::new(DmrConfig::default().with_replayq(q), &cfg.gpu);
                let run = w.run_with(&cfg.gpu, &mut engine)?;
                w.check(&run)?;
                run
            };
            Ok(run.stats.cycles)
        })?;
    let rows: Vec<Fig9bRow> = Benchmark::ALL
        .iter()
        .enumerate()
        .map(|(bi, &bench)| {
            let c = &cycles[bi * VARIANTS..(bi + 1) * VARIANTS];
            let base_cycles = c[0].max(1);
            Fig9bRow {
                benchmark: bench,
                base_cycles,
                normalized: std::array::from_fn(|i| c[i + 1] as f64 / base_cycles as f64),
            }
        })
        .collect();
    let mut table = Table::new(vec![
        "benchmark",
        "base cycles",
        "Q=0",
        "Q=1",
        "Q=5",
        "Q=10",
    ]);
    for r in &rows {
        let mut cells = vec![r.benchmark.name().to_string(), r.base_cycles.to_string()];
        cells.extend(r.normalized.iter().map(|n| format!("{n:.3}")));
        table.row(cells);
    }
    let n = rows.len() as f64;
    let mut avg_cells = vec!["AVERAGE".to_string(), String::new()];
    for i in 0..4 {
        let avg = rows.iter().map(|r| r.normalized[i]).sum::<f64>() / n;
        avg_cells.push(format!("{avg:.3}"));
    }
    table.row(avg_cells);
    Ok((rows, table))
}

/// Average normalized cycles per ReplayQ size — the paper's
/// 1.41 / 1.32 / 1.24 / 1.16 series.
pub fn averages(rows: &[Fig9bRow]) -> [f64; 4] {
    let n = rows.len().max(1) as f64;
    std::array::from_fn(|i| rows.iter().map(|r| r.normalized[i]).sum::<f64>() / n)
}
