//! Paper Fig. 5: execution-time breakdown by instruction (unit) type.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_isa::UnitType;
use warped_kernels::Benchmark;
use warped_sim::collectors::UnitTypeCollector;
use warped_stats::Table;

/// One benchmark's bar of Fig. 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Fraction of instructions on SPs.
    pub sp: f64,
    /// Fraction on SFUs.
    pub sfu: f64,
    /// Fraction on LD/ST units.
    pub ldst: f64,
}

/// Run every benchmark and classify issued instructions by unit.
///
/// # Errors
///
/// Propagates workload and simulator errors; results are validated.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<Fig5Row>, Table), ExperimentError> {
    let rows = cfg.runner().try_map(
        Benchmark::ALL,
        |bench| -> Result<Fig5Row, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let mut c = UnitTypeCollector::new();
            let run = w.run_with(&cfg.gpu, &mut c)?;
            w.check(&run)?;
            Ok(Fig5Row {
                benchmark: bench,
                sp: c.fraction(UnitType::Sp),
                sfu: c.fraction(UnitType::Sfu),
                ldst: c.fraction(UnitType::LdSt),
            })
        },
    )?;
    let mut table = Table::new(vec!["benchmark", "SP (%)", "SFU (%)", "LD/ST (%)"]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            format!("{:.1}", 100.0 * r.sp),
            format!("{:.1}", 100.0 * r.sfu),
            format!("{:.1}", 100.0 * r.ldst),
        ]);
    }
    Ok((rows, table))
}
