//! Paper Fig. 1: execution-time breakdown by number of active threads.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_kernels::Benchmark;
use warped_sim::collectors::ActiveThreadCollector;
use warped_stats::Table;

/// One benchmark's bar of Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `(bucket label, fraction of issued instructions)` in the paper's
    /// bucket order (1, 2-11, 12-21, 22-31, 32).
    pub fractions: Vec<(String, f64)>,
}

impl Fig1Row {
    /// Fraction of instructions issued by fully-utilized warps.
    pub fn full_fraction(&self) -> f64 {
        self.fractions.last().map(|(_, f)| *f).unwrap_or(0.0)
    }
}

/// Run every benchmark and histogram active-thread counts per issue.
///
/// # Errors
///
/// Propagates workload and simulator errors; results are validated.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<Fig1Row>, Table), ExperimentError> {
    let rows = cfg.runner().try_map(
        Benchmark::ALL,
        |bench| -> Result<Fig1Row, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let mut c = ActiveThreadCollector::new();
            let run = w.run_with(&cfg.gpu, &mut c)?;
            w.check(&run)?;
            Ok(Fig1Row {
                benchmark: bench,
                fractions: c.histogram().fractions(),
            })
        },
    )?;
    let labels: Vec<String> = rows[0].fractions.iter().map(|(l, _)| l.clone()).collect();
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(labels.iter().map(|l| format!("{l} (%)")));
    let mut table = Table::new(headers);
    for r in &rows {
        let mut cells = vec![r.benchmark.name().to_string()];
        cells.extend(r.fractions.iter().map(|(_, f)| format!("{:.1}", 100.0 * f)));
        table.row(cells);
    }
    Ok((rows, table))
}
