//! Wall-clock throughput of the simulator and the parallel experiment
//! engine: simulated cycles per second, and what the worker pool buys
//! end-to-end on a figure-shaped job mix.
//!
//! `warped bench` (and `scripts/bench.sh`) runs the same job set twice —
//! once on one worker, once on [`ExperimentConfig::threads`] workers —
//! verifies the results are identical, and reports the timings as
//! `BENCH_simulator.json`.

use crate::experiments::{ExperimentConfig, ExperimentError};
use std::time::Instant;
use warped_core::{DmrConfig, WarpedDmr};
use warped_kernels::Benchmark;
use warped_runner::Runner;
use warped_sim::NullObserver;

/// One timed benchmark run of the throughput suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResult {
    /// The benchmark simulated.
    pub benchmark: Benchmark,
    /// Whether the run carried the Warped-DMR engine.
    pub protected: bool,
    /// Simulated kernel cycles.
    pub cycles: u64,
}

/// The throughput report `scripts/bench.sh` serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Workload scale ("tiny", "small", or "full").
    pub scale: String,
    /// Worker threads of the parallel pass.
    pub threads: usize,
    /// Jobs in the suite (two sims per benchmark: unprotected and
    /// Warped-DMR).
    pub jobs: usize,
    /// Simulated cycles summed over all jobs.
    pub total_cycles: u64,
    /// Wall seconds for the serial pass (one worker).
    pub serial_seconds: f64,
    /// Wall seconds for the parallel pass (`threads` workers).
    pub parallel_seconds: f64,
}

impl BenchReport {
    /// Serial time over parallel time.
    pub fn speedup(&self) -> f64 {
        if self.parallel_seconds <= 0.0 {
            0.0
        } else {
            self.serial_seconds / self.parallel_seconds
        }
    }

    /// Simulated cycles per wall second of the parallel pass.
    pub fn cycles_per_second(&self) -> f64 {
        if self.parallel_seconds <= 0.0 {
            0.0
        } else {
            self.total_cycles as f64 / self.parallel_seconds
        }
    }

    /// The report as a JSON object (schema consumed by
    /// `scripts/bench.sh` and CI dashboards).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"scale\": \"{}\",\n  \"threads\": {},\n  \"jobs\": {},\n  \
             \"total_cycles\": {},\n  \"serial_seconds\": {:.6},\n  \
             \"parallel_seconds\": {:.6},\n  \"speedup\": {:.3},\n  \
             \"cycles_per_second\": {:.0}\n}}",
            self.scale,
            self.threads,
            self.jobs,
            self.total_cycles,
            self.serial_seconds,
            self.parallel_seconds,
            self.speedup(),
            self.cycles_per_second()
        )
    }
}

/// Simulate one job cell and return its cycle count.
fn job(
    cfg: &ExperimentConfig,
    bench: Benchmark,
    protected: bool,
) -> Result<JobResult, ExperimentError> {
    let w = bench.build(cfg.size)?;
    let run = if protected {
        let mut engine = WarpedDmr::new(DmrConfig::default(), &cfg.gpu);
        w.run_with(&cfg.gpu, &mut engine)?
    } else {
        w.run_with(&cfg.gpu, &mut NullObserver)?
    };
    w.check(&run)?;
    Ok(JobResult {
        benchmark: bench,
        protected,
        cycles: run.stats.cycles,
    })
}

/// Time the job suite serially and on `cfg.threads` workers.
///
/// # Errors
///
/// Propagates workload and simulator errors.
///
/// # Panics
///
/// Panics if the serial and parallel passes disagree — that would be a
/// determinism bug in the runner, and a benchmark number derived from it
/// would be meaningless.
pub fn run(cfg: &ExperimentConfig) -> Result<BenchReport, ExperimentError> {
    let cells: Vec<(Benchmark, bool)> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| [(b, false), (b, true)])
        .collect();
    let work = |&(bench, protected): &(Benchmark, bool)| job(cfg, bench, protected);

    let t0 = Instant::now();
    let serial = Runner::serial().try_map(&cells, work)?;
    let serial_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = cfg.runner().try_map(&cells, work)?;
    let parallel_seconds = t1.elapsed().as_secs_f64();

    assert_eq!(
        serial, parallel,
        "parallel pass must be bit-identical to serial"
    );
    Ok(BenchReport {
        scale: format!("{:?}", cfg.size).to_lowercase(),
        threads: cfg.threads,
        jobs: cells.len(),
        total_cycles: serial.iter().map(|r| r.cycles).sum(),
        serial_seconds,
        parallel_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math_and_json_shape() {
        let r = BenchReport {
            scale: "tiny".to_string(),
            threads: 4,
            jobs: 22,
            total_cycles: 1_000_000,
            serial_seconds: 2.0,
            parallel_seconds: 1.0,
        };
        assert!((r.speedup() - 2.0).abs() < 1e-12);
        assert!((r.cycles_per_second() - 1_000_000.0).abs() < 1e-6);
        let json = r.to_json();
        for key in [
            "\"scale\"",
            "\"threads\"",
            "\"jobs\"",
            "\"total_cycles\"",
            "\"serial_seconds\"",
            "\"parallel_seconds\"",
            "\"speedup\"",
            "\"cycles_per_second\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn zero_parallel_time_does_not_divide_by_zero() {
        let r = BenchReport {
            scale: "tiny".to_string(),
            threads: 1,
            jobs: 0,
            total_cycles: 0,
            serial_seconds: 0.0,
            parallel_seconds: 0.0,
        };
        assert_eq!(r.speedup(), 0.0);
        assert_eq!(r.cycles_per_second(), 0.0);
    }
}
