//! Paper Fig. 10: end-to-end execution time (kernel + host↔device
//! transfers) of the five error-detection schemes.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_baselines::{run_scheme, EndToEnd, PcieModel, SchemeKind};
use warped_core::DmrConfig;
use warped_kernels::Benchmark;
use warped_stats::Table;

/// One benchmark's five stacked bars of Fig. 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Kernel/transfer breakdown per scheme, in
    /// [`SchemeKind::ALL`] order.
    pub schemes: Vec<(SchemeKind, EndToEnd)>,
}

impl Fig10Row {
    /// Total time of `kind` normalized to the Original scheme.
    pub fn normalized(&self, kind: SchemeKind) -> f64 {
        let orig = self
            .schemes
            .iter()
            .find(|(k, _)| *k == SchemeKind::Original)
            .map(|(_, e)| e.total_ns())
            .unwrap_or(1.0);
        self.schemes
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, e)| e.total_ns() / orig)
            .unwrap_or(0.0)
    }
}

/// Run every benchmark under every scheme.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<Fig10Row>, Table), ExperimentError> {
    let pcie = PcieModel::default();
    let dmr = DmrConfig::default();
    // One job per (benchmark, scheme) cell.
    let cells: Vec<(Benchmark, SchemeKind)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| SchemeKind::ALL.into_iter().map(move |k| (b, k)))
        .collect();
    let ends = cfg.runner().try_map(
        cells,
        |(bench, kind)| -> Result<EndToEnd, ExperimentError> {
            let w = bench.build(cfg.size)?;
            Ok(run_scheme(kind, &w, &cfg.gpu, &dmr, &pcie)?)
        },
    )?;
    let per_bench = SchemeKind::ALL.len();
    let rows: Vec<Fig10Row> = Benchmark::ALL
        .iter()
        .enumerate()
        .map(|(bi, &bench)| Fig10Row {
            benchmark: bench,
            schemes: SchemeKind::ALL
                .into_iter()
                .zip(ends[bi * per_bench..(bi + 1) * per_bench].iter().cloned())
                .collect(),
        })
        .collect();
    let mut headers = vec!["benchmark".to_string()];
    for kind in SchemeKind::ALL {
        headers.push(format!("{kind} kern(us)"));
        headers.push(format!("{kind} xfer(us)"));
    }
    headers.push("Warped/Orig".to_string());
    let mut table = Table::new(headers);
    for r in &rows {
        let mut cells = vec![r.benchmark.name().to_string()];
        for (_, e) in &r.schemes {
            cells.push(format!("{:.1}", e.kernel_ns / 1000.0));
            cells.push(format!("{:.1}", e.transfer_ns / 1000.0));
        }
        cells.push(format!("{:.3}", r.normalized(SchemeKind::WarpedDmr)));
        table.row(cells);
    }
    Ok((rows, table))
}
