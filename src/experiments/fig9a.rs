//! Paper Fig. 9a: error coverage under the three Warped-DMR hardware
//! configurations (4-lane clusters, 8-lane clusters, 4-lane + cross
//! thread-core mapping).

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_core::{DmrConfig, WarpedDmr};
use warped_kernels::Benchmark;
use warped_stats::Table;

/// One benchmark's three bars of Fig. 9a (coverage %).
#[derive(Debug, Clone, Copy)]
pub struct Fig9aRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// 4-lane SIMT cluster, in-order thread mapping.
    pub four_lane: f64,
    /// 8-lane SIMT cluster, in-order thread mapping.
    pub eight_lane: f64,
    /// 4-lane cluster with the modified (cross) mapping — the paper's
    /// proposal.
    pub cross_mapping: f64,
    /// Share of the cross-mapping coverage owed to intra-warp DMR.
    pub intra_share: f64,
}

/// The three configurations of Fig. 9a.
pub fn configs() -> [(&'static str, DmrConfig); 3] {
    [
        ("4-lane cluster", DmrConfig::baseline_in_order()),
        ("8-lane cluster", DmrConfig::eight_lane_cluster()),
        ("cross mapping", DmrConfig::default()),
    ]
}

/// Run every benchmark under each configuration and report coverage.
///
/// # Errors
///
/// Propagates workload and simulator errors; results are validated.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<Fig9aRow>, Table), ExperimentError> {
    // One job per (benchmark, configuration) cell of the figure.
    let dmr_configs = configs();
    let cells: Vec<(Benchmark, usize)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| (0..dmr_configs.len()).map(move |i| (b, i)))
        .collect();
    let cov = cfg
        .runner()
        .try_map(cells, |(bench, i)| -> Result<(f64, f64), ExperimentError> {
            let w = bench.build(cfg.size)?;
            let mut engine = WarpedDmr::new(dmr_configs[i].1.clone(), &cfg.gpu);
            let run = w.run_with(&cfg.gpu, &mut engine)?;
            w.check(&run)?;
            let report = engine.report();
            Ok((report.coverage_pct(), report.intra_share()))
        })?;
    let rows: Vec<Fig9aRow> = Benchmark::ALL
        .iter()
        .enumerate()
        .map(|(bi, &bench)| {
            let c = &cov[bi * 3..bi * 3 + 3];
            Fig9aRow {
                benchmark: bench,
                four_lane: c[0].0,
                eight_lane: c[1].0,
                cross_mapping: c[2].0,
                intra_share: c[2].1,
            }
        })
        .collect();
    let mut table = Table::new(vec![
        "benchmark",
        "4-lane cluster (%)",
        "8-lane cluster (%)",
        "cross mapping (%)",
        "intra share (%)",
    ]);
    for r in &rows {
        table.row(vec![
            r.benchmark.name().to_string(),
            format!("{:.2}", r.four_lane),
            format!("{:.2}", r.eight_lane),
            format!("{:.2}", r.cross_mapping),
            format!("{:.1}", 100.0 * r.intra_share),
        ]);
    }
    let n = rows.len() as f64;
    let avg = |f: fn(&Fig9aRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
    table.row(vec![
        "AVERAGE".to_string(),
        format!("{:.2}", avg(|r| r.four_lane)),
        format!("{:.2}", avg(|r| r.eight_lane)),
        format!("{:.2}", avg(|r| r.cross_mapping)),
        format!("{:.1}", 100.0 * avg(|r| r.intra_share)),
    ]);
    Ok((rows, table))
}

/// Average coverage of each configuration across benchmarks
/// `(4-lane, 8-lane, cross)` — the paper's 89.60 / 91.91 / 96.43 triplet.
pub fn averages(rows: &[Fig9aRow]) -> (f64, f64, f64) {
    let n = rows.len().max(1) as f64;
    (
        rows.iter().map(|r| r.four_lane).sum::<f64>() / n,
        rows.iter().map(|r| r.eight_lane).sum::<f64>() / n,
        rows.iter().map(|r| r.cross_mapping).sum::<f64>() / n,
    )
}
