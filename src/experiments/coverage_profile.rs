//! Coverage by warp utilization (paper §3.3 / §5.2): *where* the
//! coverage gaps of Fig. 9a come from.
//!
//! The paper's analysis: intra-warp DMR covers 100% when active ≤ half
//! the warp; above that it degrades toward `#inactive / #active`; fully
//! utilized warps are handed to inter-warp DMR, which always reaches
//! 100%. This harness slices measured coverage by the Fig. 1 activity
//! buckets and shows exactly that profile — e.g. CUFFT's loss lives
//! entirely in the 22–31 bucket.

use crate::experiments::{ExperimentConfig, ExperimentError};
use warped_core::{DmrConfig, WarpedDmr};
use warped_kernels::Benchmark;
use warped_stats::Table;

/// One benchmark's coverage-by-utilization profile.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Coverage % per bucket (1 / 2-11 / 12-21 / 22-31 / 32); `None`
    /// where the benchmark never issued in that bucket.
    pub per_bucket: [Option<f64>; 5],
    /// Overall coverage %.
    pub overall: f64,
}

/// Bucket labels matching paper Fig. 1.
pub const BUCKET_LABELS: [&str; 5] = ["1", "2-11", "12-21", "22-31", "32"];

/// Run the profile over the whole suite under the paper's best
/// configuration.
///
/// # Errors
///
/// Propagates workload and simulator errors.
pub fn run(cfg: &ExperimentConfig) -> Result<(Vec<ProfileRow>, Table), ExperimentError> {
    let rows = cfg.runner().try_map(
        Benchmark::ALL,
        |bench| -> Result<ProfileRow, ExperimentError> {
            let w = bench.build(cfg.size)?;
            let mut engine = WarpedDmr::new(DmrConfig::default(), &cfg.gpu);
            let run = w.run_with(&cfg.gpu, &mut engine)?;
            w.check(&run)?;
            let r = engine.report();
            let per_bucket =
                std::array::from_fn(|i| (r.bucket_total[i] > 0).then(|| r.bucket_coverage_pct(i)));
            Ok(ProfileRow {
                benchmark: bench,
                per_bucket,
                overall: r.coverage_pct(),
            })
        },
    )?;
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(BUCKET_LABELS.iter().map(|l| format!("{l} (%)")));
    headers.push("overall (%)".to_string());
    let mut table = Table::new(headers);
    for r in &rows {
        let mut cells = vec![r.benchmark.name().to_string()];
        cells.extend(
            r.per_bucket
                .iter()
                .map(|b| b.map_or("-".to_string(), |v| format!("{v:.1}"))),
        );
        cells.push(format!("{:.2}", r.overall));
        table.row(cells);
    }
    Ok((rows, table))
}

/// The §3.3 theory in closed form: expected intra-warp coverage fraction
/// for `active` active threads of a 32-lane warp under ideal (balanced)
/// pairing.
pub fn theoretical_intra_coverage(active: u32) -> f64 {
    if active == 0 {
        return 0.0;
    }
    let idle = 32u32.saturating_sub(active);
    if active <= idle {
        1.0
    } else {
        idle as f64 / active as f64
    }
}
