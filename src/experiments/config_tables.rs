//! Paper Tables 1, 3 and 4 as printable artifacts.

use warped_core::rfu;
use warped_kernels::Benchmark;
use warped_sim::GpuConfig;
use warped_stats::Table;

/// Paper Table 1: the RFU MUX priority table for a 4-lane SIMT cluster.
pub fn table1() -> Table {
    let mut t = Table::new(vec!["Priority", "MUX0", "MUX1", "MUX2", "MUX3"]);
    const ORDINALS: [&str; 4] = ["1st", "2nd", "3rd", "4th"];
    for (k, ord) in ORDINALS.iter().enumerate() {
        let mut cells = vec![ord.to_string()];
        for m in 0..4 {
            cells.push(rfu::priority(m, k).to_string());
        }
        t.row(cells);
    }
    t
}

/// Paper Table 3: simulation parameters.
pub fn table3(cfg: &GpuConfig) -> Table {
    let mut t = Table::new(vec!["Parameter", "Value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Execution Model", "In-order".into()),
        ("Execution Width", "32 wide SIMT".into()),
        ("Warp Size", warped_sim::WARP_SIZE.to_string()),
        ("# Threads/Core", cfg.max_threads_per_sm().to_string()),
        ("# Core(SP)s/Multiprocessor(SM)", "32".into()),
        ("# SMs", cfg.num_sms.to_string()),
        ("RF latency (cycles)", cfg.rf_latency.to_string()),
        ("SP latency (cycles)", cfg.sp_latency.to_string()),
        ("SFU latency (cycles)", cfg.sfu_latency.to_string()),
        (
            "Shared mem latency (cycles)",
            cfg.shared_latency.to_string(),
        ),
        (
            "Global mem latency (cycles)",
            cfg.global_latency.to_string(),
        ),
        ("Clock period (ns)", format!("{}", cfg.clock_ns)),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

/// Paper Table 4: the workload list.
pub fn table4() -> Table {
    let mut t = Table::new(vec!["Category", "Benchmark"]);
    for b in Benchmark::ALL {
        t.row(vec![b.category().to_string(), b.name().to_string()]);
    }
    t
}
